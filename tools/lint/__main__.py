"""CLI: ``python -m tools.lint [paths...]``.

Exits non-zero when any finding survives suppression, so the CI ``lint``
job fails on new violations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.lint.engine import lint_paths
from tools.lint.rules import LINT_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repo-specific determinism/invariant linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root that rule path scopes are relative to",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in LINT_RULES:
            print(f"{rule.rule_id}  {rule.description}")
            print(f"        fix: {rule.fixit}")
        return 0

    fixits = {rule.rule_id: rule.fixit for rule in LINT_RULES}
    findings = lint_paths(Path(args.root).resolve(), args.paths, LINT_RULES)
    for finding in findings:
        print(finding.render(fixits[finding.rule]))
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
