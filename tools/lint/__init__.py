"""Determinism/invariant linter for the reproduction's Python sources.

Run as ``python -m tools.lint`` (defaults to ``src/repro``).  See
:mod:`tools.lint.rules` for the rule catalog and
:mod:`tools.lint.engine` for the suppression syntax.
"""

from tools.lint.engine import LintFinding, lint_paths, lint_source
from tools.lint.rules import LINT_RULES

__all__ = ["LINT_RULES", "LintFinding", "lint_paths", "lint_source"]
