"""Lint engine: file walking, suppression handling, finding collection.

Rules (see :mod:`tools.lint.rules`) are small objects with a stable ID, a
path scope, and an AST check.  The engine parses each Python file once,
runs every in-scope rule, and filters the raw findings through the two
suppression forms:

* ``# lint: allow RULE [RULE ...]`` — trailing comment silences those
  rules on that line only;
* ``# lint: allow-file RULE [RULE ...]`` — anywhere in the file, silences
  the rules for the whole file.

Suppressions are deliberately loud in the diff: a rule can only be turned
off at the place that violates it, never globally from a config file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Protocol

_ALLOW_LINE_RE = re.compile(r"#\s*lint:\s*allow\s+(?P<rules>[A-Z0-9 ]+?)\s*$")
_ALLOW_FILE_RE = re.compile(
    r"#\s*lint:\s*allow-file\s+(?P<rules>[A-Z0-9 ]+?)\s*$"
)


@dataclass(frozen=True, order=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self, fixit: str) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message} (fix: {fixit})"


class LintRule(Protocol):
    """Interface every rule in :data:`tools.lint.rules.LINT_RULES` satisfies."""

    rule_id: str
    description: str
    fixit: str

    def applies(self, relpath: str) -> bool:
        """Whether the rule runs on the file at repo-relative ``relpath``."""
        ...

    def check(
        self, tree: ast.Module, relpath: str
    ) -> Iterator[tuple[int, str]]:
        """Yield ``(line, message)`` violations found in ``tree``."""
        ...


def _suppressions(
    source: str,
) -> tuple[frozenset[str], dict[int, frozenset[str]]]:
    """``(file-wide rules, line -> rules)`` silenced in ``source``."""
    file_wide: set[str] = set()
    by_line: dict[int, frozenset[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_FILE_RE.search(line)
        if match:
            file_wide.update(match.group("rules").split())
            continue
        match = _ALLOW_LINE_RE.search(line)
        if match:
            by_line[line_no] = frozenset(match.group("rules").split())
    return frozenset(file_wide), by_line


def lint_source(
    source: str, relpath: str, rules: Iterable[LintRule]
) -> list[LintFinding]:
    """Run every in-scope rule over one file's source text."""
    in_scope = [rule for rule in rules if rule.applies(relpath)]
    if not in_scope:
        return []
    tree = ast.parse(source, filename=relpath)
    file_wide, by_line = _suppressions(source)
    findings = []
    for rule in in_scope:
        if rule.rule_id in file_wide:
            continue
        for line, message in rule.check(tree, relpath):
            if rule.rule_id in by_line.get(line, frozenset()):
                continue
            findings.append(
                LintFinding(
                    path=relpath, line=line, rule=rule.rule_id, message=message
                )
            )
    return sorted(findings)


def iter_python_files(root: Path, targets: Iterable[str]) -> Iterator[Path]:
    """Every ``.py`` file under the given targets (files or directories)."""
    for target in targets:
        path = (root / target).resolve() if not Path(target).is_absolute() else Path(target)
        if path.is_file():
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def lint_paths(
    root: Path, targets: Iterable[str], rules: Iterable[LintRule]
) -> list[LintFinding]:
    """Lint every Python file under ``targets``, relative to repo ``root``."""
    rules = list(rules)
    findings: list[LintFinding] = []
    for path in iter_python_files(root, targets):
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), relpath, rules)
        )
    return sorted(findings)
