"""Deep field-by-field state comparison for simulator objects.

``state_diff(a, b)`` walks two object graphs in lockstep — ``__slots__``
and instance ``__dict__`` attributes, dataclass fields, dicts, lists,
tuples and sets — and returns a list of human-readable divergence paths
like ``core[1].l1._sets[3][0].dirty: True != False``.  An empty list means
the two graphs are field-for-field identical.

The walk skips configuration and topology that is immutable for a given
system (program text, decode caches, dispatch tables, geometry constants)
and back-references (``Core.hierarchy``, ``Cache.parent``) that would
otherwise make every comparison traverse the whole system from every node.
Plain dicts compare order-insensitively (key set + per-key values);
``collections.OrderedDict`` compares key *order* too.  Behavioural order
dependence hiding in plain dicts (e.g. a FIFO keyed on insertion order) is
covered differentially instead: the parity harness also runs both systems
onward and compares their final digests, so an order divergence that
matters cannot stay silent.

``diff_systems(a, b)`` is the entry point for two ``System`` objects; it
roots the paths at ``core[i]`` / ``core[i].l1`` / ``l2`` / ``memory`` so a
report reads like the architecture, not like attribute soup.

Used by ``tests/test_snapshot_parity.py``; importable from the repo root
(``from tools.state_diff import diff_systems``).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from itertools import chain
from typing import Any

DEFAULT_LIMIT = 50

#: Attribute names never walked, on any object: immutable configuration,
#: derived caches, callables and back-references.
GLOBAL_SKIP = frozenset(
    {
        "program",
        "config",
        "hierarchy",
        "amap",
        "parent",
        "on_evict",
        "_dispatch",
        "_decoded",
        "_port",
        "_memory",
        "_active",
    }
)

#: Per-class skips: aliases that would double-report real state walked
#: elsewhere (``Core._values`` aliases ``Core.regs._values``) and the
#: per-core mirrors of immutable :class:`CoreConfig` fields, which may
#: legitimately differ between two systems being compared differentially
#: (e.g. countdown fusion on vs off) without being *state*.
PER_CLASS_SKIP: dict[str, frozenset[str]] = {
    "Core": frozenset(
        {
            "_values",
            "_tracks",
            "core_id",
            "_program_len",
            "_scale_cap",
            "_base_cost",
            "_mul_cost",
            "_branch_cost",
            "_load_hide",
            "_fuse_loops",
            "_spec_enabled",
            "_resolve_delay",
            "_predictor_entries",
            "_spec_window",
        }
    ),
}

_LEAF_TYPES = (int, float, complex, str, bytes, bool, type(None))


def state_diff(
    a: Any, b: Any, path: str = "state", limit: int = DEFAULT_LIMIT
) -> list[str]:
    """Return divergence paths between two object graphs (empty = equal)."""
    out: list[str] = []
    _walk(a, b, path, out, set(), limit)
    return out


def diff_systems(a: Any, b: Any, limit: int = DEFAULT_LIMIT) -> list[str]:
    """``state_diff`` over two ``System`` objects with architectural paths."""
    out: list[str] = []
    visited: set[tuple[int, int]] = set()
    if len(a.cores) != len(b.cores):
        return [f"system: {len(a.cores)} core(s) != {len(b.cores)}"]
    ha, hb = a.hierarchy, b.hierarchy
    for i, (ca, cb) in enumerate(zip(a.cores, b.cores)):
        _walk(ca, cb, f"core[{i}]", out, visited, limit)
    for i, (la, lb) in enumerate(zip(ha.l1ds, hb.l1ds)):
        _walk(la, lb, f"core[{i}].l1", out, visited, limit)
    _walk(ha.l2, hb.l2, "l2", out, visited, limit)
    _walk(ha.memory, hb.memory, "memory", out, visited, limit)
    _walk(ha._logs, hb._logs, "prefetch_logs", out, visited, limit)
    _walk(ha._exclusive, hb._exclusive, "exclusive", out, visited, limit)
    _walk(
        ha.ownership_steals,
        hb.ownership_steals,
        "ownership_steals",
        out,
        visited,
        limit,
    )
    for i in range(ha.num_cores):
        _walk(
            ha._prefetchers.get(i),
            hb._prefetchers.get(i),
            f"core[{i}].prefetcher",
            out,
            visited,
            limit,
        )
    return out


def _walk(
    a: Any,
    b: Any,
    path: str,
    out: list[str],
    visited: set[tuple[int, int]],
    limit: int,
) -> None:
    if len(out) >= limit:
        return
    if a is b:
        return
    if type(a) is not type(b):
        out.append(
            f"{path}: type {type(a).__name__} != {type(b).__name__}"
        )
        return
    if isinstance(a, _LEAF_TYPES):
        if a != b:
            out.append(f"{path}: {a!r} != {b!r}")
        return
    key = (id(a), id(b))
    if key in visited:
        return
    visited.add(key)
    if isinstance(a, dict):
        _walk_dict(a, b, path, out, visited, limit)
        return
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (xa, xb) in enumerate(zip(a, b)):
            _walk(xa, xb, f"{path}[{i}]", out, visited, limit)
        return
    if isinstance(a, (set, frozenset)):
        only_a, only_b = a - b, b - a
        if only_a or only_b:
            out.append(
                f"{path}: set differs (+{sorted(only_a)!r} -{sorted(only_b)!r})"
            )
        return
    if callable(a) and not _fields_of(a):
        return
    fields = _fields_of(a)
    if not fields:
        # Opaque object with no walkable fields: fall back to ==.
        if a != b:
            out.append(f"{path}: {a!r} != {b!r}")
        return
    skip = PER_CLASS_SKIP.get(type(a).__name__, frozenset())
    for name in fields:
        if name in GLOBAL_SKIP or name in skip:
            continue
        missing = object()
        xa = getattr(a, name, missing)
        xb = getattr(b, name, missing)
        if xa is missing or xb is missing:
            if xa is not xb:
                out.append(f"{path}.{name}: present on only one side")
            continue
        if callable(xa) and callable(xb):
            continue
        _walk(xa, xb, f"{path}.{name}", out, visited, limit)


def _walk_dict(
    a: dict, b: dict, path: str, out: list[str], visited: set, limit: int
) -> None:
    if a.keys() != b.keys():
        only_a = sorted(map(repr, a.keys() - b.keys()))
        only_b = sorted(map(repr, b.keys() - a.keys()))
        out.append(f"{path}: keys differ (+{only_a} -{only_b})")
        return
    if isinstance(a, OrderedDict) and tuple(a) != tuple(b):
        out.append(f"{path}: key order differs")
        return
    for k in a:
        _walk(a[k], b[k], f"{path}[{k!r}]", out, visited, limit)


def _fields_of(obj: Any) -> tuple[str, ...]:
    """Walkable attribute names: dataclass fields, __slots__, __dict__."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return tuple(f.name for f in dataclasses.fields(obj))
    names: list[str] = []
    seen: set[str] = set()
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in seen:
                seen.add(name)
                names.append(name)
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict:
        for name in instance_dict:
            if name not in seen:
                seen.add(name)
                names.append(name)
    return tuple(names)
