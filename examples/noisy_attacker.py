#!/usr/bin/env python3
"""Challenges C3/C4: why the Record Protector exists.

C3 interleaves benign loads (distinct PCs) between probes, thrashing the
Access Tracker's buffers.  C4 points the probe load itself at non-eviction
lines, corrupting DiffMin.  Either defeats the Access Tracker alone; the
Record Protector's scale buffer — fed by the victim's own trusted phase-2
pattern — restores the defense (paper Fig. 8 d-l).
"""

from repro import PrefenderConfig, PrefetcherSpec, SystemConfig
from repro.attacks import EvictReloadAttack


def spec(config: PrefenderConfig) -> SystemConfig:
    return SystemConfig(
        prefetcher=PrefetcherSpec(kind="prefender", prefender=config)
    )


def main() -> None:
    at_only = PrefenderConfig.at_only().with_buffers(8)
    at_rp = PrefenderConfig.at_rp().with_buffers(8)
    for challenge, kwargs in [
        ("C3 (noisy instructions)", {"noise_c3": True}),
        ("C4 (noisy accesses)", {"noise_c4": True}),
        ("C3+C4", {"noise_c3": True, "noise_c4": True}),
    ]:
        print(f"== {challenge} ==")
        for label, config in [("AT alone", at_only), ("AT + RP", at_rp)]:
            outcome = EvictReloadAttack(**kwargs).run(spec(config))
            print(f"  {label:>9}: {outcome.summary()}")
        print()


if __name__ == "__main__":
    main()
