#!/usr/bin/env python3
"""Quickstart: run Flush+Reload with and without PREFENDER.

This is the paper in one page: an undefended system leaks the victim's
secret through a single fast cacheline; with PREFENDER the attacker sees a
crowd of fast lines and learns nothing.
"""

from repro import PrefenderConfig, PrefetcherSpec, SystemConfig
from repro.attacks import FlushReloadAttack


def main() -> None:
    secret = 65
    attack = FlushReloadAttack(secret=secret)

    baseline = attack.run(SystemConfig())
    print("Undefended system:")
    print(" ", baseline.summary())

    defended = attack.run(
        SystemConfig(
            prefetcher=PrefetcherSpec(
                kind="prefender", prefender=PrefenderConfig.full(8)
            )
        )
    )
    print("With PREFENDER (ST+AT+RP):")
    print(" ", defended.summary())

    assert baseline.attack_succeeded, "baseline attack should recover the secret"
    assert defended.defended, "PREFENDER should defeat the attack"
    print("\nLatency excerpt around the secret (index: cycles)")
    for index in range(secret - 3, secret + 4):
        print(
            f"  idx {index:>3}: baseline {baseline.latencies[index]:>4}  "
            f"prefender {defended.latencies[index]:>4}"
        )


if __name__ == "__main__":
    main()
