#!/usr/bin/env python3
"""Performance: PREFENDER on the SPEC-like workload models.

Runs a compact version of Table IV's headline columns — baseline, the
secure prefetcher alone, and the conventional prefetchers — over the
SPEC 2006 models, printing per-benchmark speedups.
"""

from repro import PrefetcherSpec, SystemConfig
from repro.core.config import PrefenderConfig
from repro.experiments.common import PERF_CORE
from repro.sim.simulator import run_program
from repro.workloads import SPEC2006_NAMES, get_workload

CONFIGS = [
    ("Prefender", PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.full(32))),
    ("Tagged", PrefetcherSpec(kind="tagged")),
    ("Stride", PrefetcherSpec(kind="stride")),
]


def main() -> None:
    header = f"{'benchmark':<18}" + "".join(f"{name:>12}" for name, _ in CONFIGS)
    print(header)
    print("-" * len(header))
    for name in SPEC2006_NAMES:
        workload = get_workload(name)
        baseline = run_program(
            workload.program(0.5), SystemConfig(core=PERF_CORE)
        ).cycles
        cells = []
        for _, spec in CONFIGS:
            cycles = run_program(
                workload.program(0.5), SystemConfig(prefetcher=spec, core=PERF_CORE)
            ).cycles
            cells.append(f"{baseline / cycles - 1:>+11.2%} ")
        print(f"{name:<18}" + "".join(cells))


if __name__ == "__main__":
    main()
