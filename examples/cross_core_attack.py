#!/usr/bin/env python3
"""Cross-core Flush+Reload through the shared L2 (paper Fig. 4).

Victim and attacker run on different cores with private L1Ds and a shared
inclusive L2.  The attacker flushes, the victim (other core) touches its
secret-dependent line, and the attacker distinguishes the L2 hit from
memory misses.  PREFENDER instances sit in *both* L1Ds: the victim-side
Scale Tracker plants decoys in the victim's L1 and the shared L2; the
attacker-side Access Tracker outruns the probe loop.
"""

from repro import PrefenderConfig, PrefetcherSpec, SystemConfig
from repro.attacks import FlushReloadAttack


def main() -> None:
    for label, spec in [
        ("Baseline", PrefetcherSpec(kind="none")),
        (
            "Prefender-ST",
            PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.st_only()),
        ),
        (
            "Prefender (full)",
            PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.full(8)),
        ),
    ]:
        attack = FlushReloadAttack(cross_core=True)
        outcome = attack.run(SystemConfig(prefetcher=spec))
        print(f"{label:>18}: {outcome.summary()}")
        hits = [lat for lat in outcome.latencies if 0 < lat < 65]
        print(
            f"{'':>18}  fast probes: {len(hits)} "
            f"(L2-hit latencies ~{min(hits) if hits else '-'} cycles)"
        )


if __name__ == "__main__":
    main()
