#!/usr/bin/env python3
"""Write an attack in raw assembly text and watch the Scale Tracker work.

Demonstrates the assembler front-end and the Table III dataflow: the
victim's index arrives from memory (so its register is ``NA``), the
multiply by 0x200 gives the address its *scale*, and the Scale Tracker
turns that into decoy prefetches.
"""

from repro import PrefenderConfig, PrefetcherSpec, SystemConfig, assemble
from repro.sim.simulator import run_program

SOURCE = """
.name victim_demo
.equ ARRAY   0x02000000
.equ SECRETP 0x03002100
.data 0x03002100 stride=8 12        ; the secret: 12

    li   r1, ARRAY
    li   r2, SECRETP
    load r3, 0(r2)        ; secret from memory -> fva NA
    mul  r4, r3, 0x200    ; scale becomes 0x200 (Table III mul rule)
    add  r5, r1, r4       ; base + secret*0x200 keeps the scale
    load r6, 0(r5)        ; the Scale Tracker fires here
    halt
"""


def main() -> None:
    program = assemble(SOURCE)
    print("Disassembly:\n" + program.to_text() + "\n")

    config = SystemConfig(
        prefetcher=PrefetcherSpec(
            kind="prefender", prefender=PrefenderConfig.st_only()
        )
    )
    result = run_program(program, config)
    counts = result.prefetch_counts[0]
    print(f"Scale Tracker prefetches issued: {counts.get('st', 0)}")
    for _, component, block in result.prefetch_timelines[0]:
        index = (block - 0x02000000) // 0x200
        print(f"  {component}: line of array index {index} (block {block:#x})")
    print("\nThe victim accessed index 12; the decoys sit at 11 and 13 —")
    print("a Flush+Reload attacker now sees three equally-warm lines.")


if __name__ == "__main__":
    main()
