; Quickstart assembly program for `python -m repro analyze`.
;
;   $ python -m repro analyze examples/quickstart.asm --verbose
;
; A small strided reduction over a data segment, written to exercise the
; assembler's directives (.name/.equ/.data) and to come back clean from
; every static-analysis rule (AN-BRANCH, AN-FALLOFF, AN-HALT, AN-DEAD,
; AN-UBD).  Delete the `halt` or the `li r2, ...` below and re-run the
; analyzer to see line-numbered findings.

.name quickstart
.equ TABLE 0x10000
.equ LINES 8

.data 0x10000 stride=64 1 2 3 4 5 6 7 8

start:
    li   r1, TABLE        ; cursor
    li   r2, LINES        ; remaining lines
    li   r3, 0            ; accumulator
loop:
    load r4, 0(r1)
    add  r3, r3, r4
    add  r1, r1, 64
    sub  r2, r2, 1
    bne  r2, zero, loop
    store r3, 0(r1)       ; one line past the table: statically resolved
    halt
