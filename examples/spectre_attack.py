#!/usr/bin/env python3
"""Spectre v1 end to end: transient leak, cache channel, PREFENDER defense.

The victim's bounds check is trained taken, then called out-of-bounds: the
core follows the mispredicted path, transiently reads the secret and
touches ``array2[secret * 0x200]``.  Architectural state rolls back; the
cache keeps the footprint; Flush+Reload extracts it — unless PREFENDER's
Scale Tracker saw the transient load's address dataflow and planted decoy
lines.
"""

from repro import PrefenderConfig, PrefetcherSpec, SystemConfig
from repro.attacks import FlushReloadAttack


def run_variant(label: str, spec: PrefetcherSpec) -> None:
    attack = FlushReloadAttack(victim_mode="spectre", secret=65)
    outcome = attack.run(SystemConfig(prefetcher=spec))
    squashes = outcome.run_result  # core stats live in the run result
    print(f"{label:>24}: {outcome.summary()}")
    del squashes


def main() -> None:
    print("Spectre v1 over Flush+Reload (single core, speculative CPU)\n")
    run_variant("Baseline", PrefetcherSpec(kind="none"))
    run_variant(
        "Prefender-ST",
        PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.st_only()),
    )
    run_variant(
        "Prefender (full)",
        PrefetcherSpec(kind="prefender", prefender=PrefenderConfig.full(8)),
    )
    print(
        "\nThe transient secret-dependent load carries scale 0x200 in its"
        "\naddress dataflow (Table III); the Scale Tracker prefetches the"
        "\nneighbouring eviction lines, so the reload phase cannot single"
        "\nout the real access."
    )


if __name__ == "__main__":
    main()
