"""Defense-vs-performance frontier over the PREFENDER knob grid.

Shape targets: the undefended baseline leaks everything (success rate 1)
at normalized cycles 1; every grid configuration is strictly safer than
no defense; the Pareto frontier is non-empty and drawn from the grid; and
at least one frontier point beats the PCG-style comparison on *both*
axes (the paper's headline: a defense that is also a speedup).
"""

from conftest import perf_scale

from repro.experiments import frontier


def test_frontier(benchmark, emit):
    result = benchmark.pedantic(
        frontier.run,
        kwargs={"scale": min(perf_scale(), 0.2), "jobs": 1},
        rounds=1,
        iterations=1,
    )
    emit("frontier", frontier.render(result))

    base, pcg = result.baselines
    assert base.success_rate == 1.0 and base.normalized_cycles == 1.0

    assert result.frontier, "frontier must be non-empty"
    grid_labels = {point.label for point in result.points}
    for point in result.frontier:
        assert point.label in grid_labels

    for point in result.points:
        assert point.success_rate < base.success_rate

    assert any(
        point.success_rate <= pcg.success_rate
        and point.normalized_cycles < pcg.normalized_cycles
        for point in result.frontier
    ), "some PREFENDER config must dominate the PCG-style comparison"
