"""Figure 10: normalized total L1D miss latency.

Shape targets: PREFENDER configurations reduce average miss latency below
the baseline (normalized < 1.0 on average); prefetch-friendly benchmarks
sit well below 1.
"""

from conftest import perf_scale

from repro.experiments import figure10


def test_figure10(benchmark, emit):
    result = benchmark.pedantic(
        figure10.run, kwargs={"scale": perf_scale()}, rounds=1, iterations=1
    )
    emit("figure10", figure10.render(result))

    averages = result.averages()
    assert averages["ST+AT"] < 1.0
    assert averages["Prefender"] < 1.0
    assert averages["ST+AT(T)"] < 1.0
    assert averages["ST+AT(S)"] < 1.0

    st_at = result.normalized("ST+AT")
    assert st_at["462.libquantum"] < 0.9
    assert st_at["429.mcf"] < 0.9
    # Compute-only benchmark is untouched (no misses either way).
    assert abs(st_at["999.specrand"] - 1.0) < 1e-9
