"""Figure 8: the security matrix — every attack x challenge x defense.

Shape targets (DESIGN.md): baseline uniquely leaks; ST yields secret±1;
AT floods under C1+C2 but fails under C3/C4; RP restores the defense;
full PREFENDER defends everything.
"""

from repro.experiments import figure8


def test_figure8(benchmark, emit):
    panels = benchmark.pedantic(figure8.run, rounds=1, iterations=1)
    emit("figure8", figure8.render(panels))
    verdicts = figure8.verdicts(panels)

    for attack in ("Flush+Reload", "Evict+Reload", "Prime+Probe"):
        # Panels (a-c): baseline leaks, every PREFENDER variant defends.
        assert verdicts[(attack, "C1+C2", "Base")] is True
        for defense in ("ST", "AT", "ST+AT"):
            assert verdicts[(attack, "C1+C2", defense)] is False
        # Panels (d-i): AT alone breaks under noise, AT+RP holds.
        assert verdicts[(attack, "C1+C2+C3", "AT")] is True
        assert verdicts[(attack, "C1+C2+C3", "AT+RP")] is False
        assert verdicts[(attack, "C1+C2+C4", "AT")] is True
        assert verdicts[(attack, "C1+C2+C4", "AT+RP")] is False
        # Panels (j-l): all challenges, full PREFENDER defends.
        assert verdicts[(attack, "C1+C2+C3+C4", "Base")] is True
        assert verdicts[(attack, "C1+C2+C3+C4", "FULL")] is False

    # The ST defense produces the paper's secret±1 signature.
    for panel in panels:
        if panel.challenges == "C1+C2" and "ST" in panel.outcomes:
            outcome = panel.outcomes["ST"]
            expected = {outcome.secret - 1, outcome.secret, outcome.secret + 1}
            assert set(outcome.candidates) == expected
