"""Figure 12: protected access buffers over execution progress.

Shape targets (paper Sec. V-D): benchmarks split into classes — some keep
many protected buffers, compute-only/random ones keep none.
"""

from conftest import perf_scale

from repro.experiments import figure12

# A compact benchmark subset showing both classes.
WORKLOADS = ["429.mcf", "458.sjeng", "462.libquantum", "999.specrand"]


def test_figure12(benchmark, emit):
    series = benchmark.pedantic(
        figure12.run,
        kwargs={"scale": perf_scale(), "workloads": WORKLOADS},
        rounds=1,
        iterations=1,
    )
    emit("figure12", figure12.render(series))

    peaks = {entry.benchmark: entry.peak for entry in series}
    # mcf's indirect phase records scales -> buffers get protected.
    assert peaks["429.mcf"] > 0
    # compute-only code never records a scale, so nothing is protected.
    assert peaks["999.specrand"] == 0
    for entry in series:
        assert all(0 <= p <= 32 for p in entry.protected)
