"""Table VI: SPEC 2017 speedups.

Shape targets: parest is the PREFENDER standout (Scale-Tracker-friendly
strided-sparse) and beats the plain Stride prefetcher there; streaming
benchmarks (roms, cactuBSSN) gain most with Tagged; exchange2 flat;
deepsjeng not positive.
"""

from conftest import perf_scale

from repro.experiments import table6


def test_table6(benchmark, emit):
    result = benchmark.pedantic(
        table6.run, kwargs={"scale": perf_scale()}, rounds=1, iterations=1
    )
    emit("table6", table6.render(result))

    st_at = result.column("ST+AT")
    tagged = result.column("Tagged")
    stride = result.column("Stride")

    assert st_at["510.parest_r"] > 0.02
    assert st_at["510.parest_r"] > stride["510.parest_r"]
    assert tagged["554.roms_r"] > 0.05
    assert tagged["507.cactuBSSN_r"] > 0.05
    assert abs(st_at["548.exchange2_r"]) < 0.001
    assert st_at["531.deepsjeng_r"] < 0.01
    for header, average in zip(result.headers[1:], result.averages):
        assert average > 0, f"column {header} average not positive"
