"""Figure 9: prefetch counts over time during the attacks.

Shape targets: ST contributes a small burst (phase 2); AT a large burst
(phase 3); with noise + full PREFENDER, RP-guided prefetches appear and
outnumber ST's.
"""

from repro.experiments import figure9


def test_figure9_clean(benchmark, emit):
    panels = benchmark.pedantic(
        figure9.run, kwargs={"noisy": False}, rounds=1, iterations=1
    )
    emit("figure9_abc", figure9.render(panels))
    for panel in panels:
        assert panel.totals.get("at", 0) > 0, panel.attack
        if "st" in panel.totals:
            assert panel.totals["at"] > panel.totals["st"], panel.attack


def test_figure9_noisy(benchmark, emit):
    panels = benchmark.pedantic(
        figure9.run, kwargs={"noisy": True}, rounds=1, iterations=1
    )
    emit("figure9_def", figure9.render(panels))
    for panel in panels:
        # RP-guided prefetching is active in every noisy panel.  (Note: the
        # C4 noise arithmetic itself carries a trackable 0x80 scale, so ST
        # also fires on the attacker's own probes here — see EXPERIMENTS.md.)
        assert panel.totals.get("rp", 0) > 0, panel.attack
        assert panel.totals.get("at", 0) + panel.totals["rp"] > 0, panel.attack
