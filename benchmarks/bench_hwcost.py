"""Section V-E: hardware resource consumption.

Shape targets are the paper's own claims: Scale Tracker in the hundreds of
bytes; Access Tracker under 3KB; Record Protector exactly 400 bytes; a
9-bit modulus datapath.
"""

from repro.hwcost import estimate, render_report


def test_hwcost(benchmark, emit):
    report = benchmark.pedantic(estimate, rounds=1, iterations=1)
    emit("hwcost", render_report(report))

    assert report.scale_tracker.sram_bytes < 1024  # "hundreds of bytes"
    assert report.access_tracker.sram_bytes < 3 * 1024  # "<3KB SRAMs"
    assert report.record_protector.sram_bytes == 400  # "400 bytes are needed"
    assert report.record_protector.modulus_bits == 9  # "9 bits ... set index"
    assert report.record_protector.entry_bits == 80  # 16(sc)+64(BlkAddr)
    assert report.total_sram_bytes < 4 * 1024
