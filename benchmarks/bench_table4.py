"""Table IV: SPEC 2006 speedups without the Record Protector.

Shape targets: averages positive for every prefetcher column; the
memory-pattern winners (mcf, libquantum, bzip2, xalancbmk) clearly
positive under ST+AT; random-lookup (sjeng) not positive; compute-only
(specrand) flat; more access buffers never catastrophically worse.
"""

from conftest import perf_scale

from repro.experiments import table4


def test_table4(benchmark, emit):
    result = benchmark.pedantic(
        table4.run, kwargs={"scale": perf_scale()}, rounds=1, iterations=1
    )
    emit("table4", table4.render(result))

    for header, average in zip(result.headers[1:], result.averages):
        assert average > 0, f"column {header} average not positive: {average}"

    st_at = result.column("ST+AT/32")
    for winner in ("429.mcf", "462.libquantum", "401.bzip2", "483.xalancbmk"):
        assert st_at[winner] > 0.01, winner
    assert st_at["458.sjeng"] < 0.01
    assert abs(st_at["999.specrand"]) < 0.001

    # Composites track or beat the basic prefetcher on average.
    headers = result.headers
    tagged_avg = result.averages[headers.index("Tagged") - 1]
    composite_avg = result.averages[headers.index("ST+AT(T)/32") - 1]
    assert composite_avg > tagged_avg - 0.02
