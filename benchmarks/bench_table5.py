"""Table V: SPEC 2006 speedups with the Record Protector.

Shape targets: same winners/losers as Table IV; column averages positive;
RP costs little (Table V averages within a few points of Table IV's).
"""

from conftest import perf_scale

from repro.experiments import table4, table5


def test_table5(benchmark, emit):
    scale = perf_scale()
    result = benchmark.pedantic(
        table5.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit("table5", table5.render(result))

    for header, average in zip(result.headers[1:], result.averages):
        assert average > 0, f"column {header} average not positive: {average}"

    full = result.column("Prefender/32")
    assert full["429.mcf"] > 0.01
    assert full["462.libquantum"] > 0.01
    assert abs(full["999.specrand"]) < 0.001

    # RP-on averages stay in the same band as RP-off (paper: slightly lower).
    rp_off = table4.run(scale=scale)
    for index, header in enumerate(result.headers[1:]):
        delta = result.averages[index] - rp_off.averages[index]
        assert abs(delta) < 0.08, f"{header}: RP shifted average by {delta:+.2%}"
