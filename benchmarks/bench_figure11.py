"""Figure 11: prefetches issued by ST / AT / RP per benchmark.

Shape targets (paper Sec. V-D): the Access Tracker issues the most
prefetches; RP-guided prefetches outnumber the Scale Tracker's
(RP triggers on every scale-buffer hit; ST only on fresh large scales).
"""

from conftest import perf_scale

from repro.experiments import figure11


def test_figure11(benchmark, emit):
    result = benchmark.pedantic(
        figure11.run, kwargs={"scale": perf_scale()}, rounds=1, iterations=1
    )
    emit("figure11", figure11.render(result))

    totals = result.totals()
    assert totals["at"] > totals["st"], "AT dominates (paper Fig. 11)"
    assert totals["at"] > totals["rp"]
    assert totals["rp"] > 0, "RP guidance active on scale-recording workloads"

    by_name = {row[0]: row[1:] for row in result.rows}
    st, at, rp = by_name["999.specrand"]
    assert (st, at, rp) == (0, 0, 0), "compute-only benchmark never prefetches"
    assert by_name["510.parest_r" if "510.parest_r" in by_name else "429.mcf"][0] > 0
