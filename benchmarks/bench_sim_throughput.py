"""Simulator throughput: instructions per second across the hot paths.

Not a paper artifact — a regression guard so the experiment suite stays
runnable (the tables re-run ~150 simulations).  Three scenarios cover the
simulator's distinct hot paths; `python -m repro bench` runs the same trio
from the CLI.  Alongside the pytest-benchmark timings, this module emits
``benchmarks/results/BENCH_sim_throughput.json`` so the throughput
trajectory is tracked run over run.
"""

import json

from repro.sim import bench
from conftest import RESULTS_DIR, perf_scale

REPORT_PATH = RESULTS_DIR / "BENCH_sim_throughput.json"


def test_sim_throughput_single_core(benchmark):
    result = benchmark(lambda: bench.run_single_core(perf_scale()))
    assert result.instructions > 1000


def test_sim_throughput_dual_core_attack(benchmark):
    result = benchmark(bench.run_dual_core_attack)
    assert result.instructions > 1000


def test_sim_throughput_speculative_spectre(benchmark):
    result = benchmark(bench.run_speculative_spectre)
    assert result.instructions > 1000


def test_emit_throughput_report(emit):
    """One best-of-3 pass over all scenarios, archived as JSON."""
    report = bench.run_bench(scale=perf_scale(), repeats=3)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    emit("bench_sim_throughput", bench.render_report(report))
    parsed = json.loads(REPORT_PATH.read_text())
    assert set(parsed["scenarios"]) == set(bench.SCENARIO_NAMES)
    for cell in parsed["scenarios"].values():
        assert cell["instr_per_sec"] > 0
