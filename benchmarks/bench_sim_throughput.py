"""Simulator throughput: instructions per second on a standard workload.

Not a paper artifact — a regression guard so the experiment suite stays
runnable (the tables re-run ~150 simulations).
"""

from repro import SystemConfig
from repro.experiments.common import PERF_CORE
from repro.sim.simulator import run_program
from repro.workloads import get_workload


def test_sim_throughput(benchmark):
    program = get_workload("462.libquantum").program(0.25)

    def run():
        return run_program(program, SystemConfig(core=PERF_CORE))

    result = benchmark(run)
    assert result.instructions > 1000
