"""Design-choice ablations called out in DESIGN.md §5.

Not a paper table — these sweep PREFENDER's own knobs to show which design
choices carry the defense:

* ST's trigger window (``cacheline < sc < page``): prefetching at scale 64
  (== cacheline) would be a no-op against the 0x200-stride attack.
* AT's activation threshold: the defense degrades gracefully as the
  threshold rises (fewer probes covered before prefetching starts).
* Access-buffer count under C3 noise: with RP disabled, more buffers than
  distinct noise PCs restore the AT defense — buffer count is a (costly)
  alternative to the Record Protector.

Each sweep declares its full attack grid up front and submits it as one
:func:`repro.runner.run_batch`; because the batch keys hash *every*
``PrefenderConfig`` field, specs differing only in ``at_threshold`` (the
knob the old experiment memoiser dropped) can never share a result.
"""

from dataclasses import replace

from repro.core.config import PrefenderConfig
from repro.runner import AttackJob, run_batch
from repro.sim.config import PrefetcherSpec, SystemConfig


def prefender_system(config: PrefenderConfig) -> SystemConfig:
    return SystemConfig(
        prefetcher=PrefetcherSpec(kind="prefender", prefender=config)
    )


def test_at_threshold_sweep(benchmark):
    thresholds = (2, 4, 6)

    def sweep():
        jobs = [
            AttackJob.build(
                "flush-reload",
                prefender_system(
                    replace(
                        PrefenderConfig.at_only().with_buffers(8),
                        at_threshold=threshold,
                    )
                ),
            )
            for threshold in thresholds
        ]
        return dict(zip(thresholds, run_batch(jobs)))

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for threshold, outcome in results.items():
        assert outcome.defended, f"threshold {threshold}"
    # Lower thresholds start prefetching earlier -> at least as many decoys.
    assert len(results[2].candidates) >= len(results[6].candidates) - 8


def test_buffer_count_vs_c3_noise(benchmark):
    """More buffers than noise PCs is the brute-force alternative to RP."""

    def sweep():
        jobs = [
            AttackJob.build(
                "flush-reload",
                prefender_system(PrefenderConfig.at_only().with_buffers(count)),
                noise_c3=True,
            )
            for count in (8, 32)
        ]
        return run_batch(jobs)

    few, many = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert few.attack_succeeded, "8 buffers thrashed by 12 noise PCs"
    assert many.defended, "32 buffers absorb the noise without RP"


def test_st_scale_window_boundary(benchmark):
    """An attack at exactly cacheline stride never triggers ST."""

    def run():
        # scale == 64 == cacheline: ST must stay silent (sc not > cacheline).
        jobs = [
            AttackJob.build(
                "flush-reload",
                prefender_system(PrefenderConfig.st_only()),
                secret=20,
            ),
            AttackJob.build(
                "flush-reload",
                prefender_system(PrefenderConfig.st_only()),
                secret=20,
                scale=64,
                num_indices=64,
            ),
        ]
        outcome, at_64 = run_batch(jobs)
        inrange = outcome.run_result.prefetch_counts[0].get("st", 0)
        silent = at_64.run_result.prefetch_counts[0].get("st", 0)
        return inrange, silent

    inrange, silent = benchmark.pedantic(run, rounds=1, iterations=1)
    assert inrange > 0, "0x200-scale attack triggers ST"
    assert silent == 0, "cacheline-scale access must not trigger ST"
