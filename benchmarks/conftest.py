"""Benchmark harness support.

Each ``bench_*.py``/``test_*`` regenerates one paper table or figure,
prints it to the terminal (visible even without ``-s``), writes it under
``benchmarks/results/`` and asserts the DESIGN.md shape targets.

``REPRO_SCALE`` (default 0.5) stretches/shrinks workload loop counts for
the performance tables; 1.0 reproduces the EXPERIMENTS.md numbers exactly.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
# The runner's on-disk JSON store (repro.runner.ResultStore) lives here.
CACHE_DIR = RESULTS_DIR / "cache"


def perf_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.5"))


@pytest.fixture
def emit(capsys):
    """Print a rendered artifact to the real terminal and archive it."""

    def _emit(name: str, text: str) -> None:
        # parents=True: a fresh checkout has no benchmarks/ intermediates.
        CACHE_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _emit
