"""Table II ablation: related prefetch defenses vs the paper's attacks.

Runs BITP and Disruptive Prefetching (implemented related-work models)
against the actual attacks and checks the coverage the paper's Table II
claims: BITP misses single-core attacks entirely; Disruptive perturbs
Prime+Probe only; PREFENDER defends all three.
"""

from repro.experiments import related


def test_related_ablation(benchmark, emit):
    rows = benchmark.pedantic(related.run, rounds=1, iterations=1)
    emit("related_ablation", related.render(rows))
    for row in rows:
        assert row.matches_paper, (
            f"{row.defense} vs {row.attack}: expected defended="
            f"{row.expected_defended}, observed {row.observed_defended}"
        )


def test_table_i_data(benchmark):
    benchmark.pedantic(lambda: related.TABLE_I, rounds=1, iterations=1)
    assert related.TABLE_I["Prefender"][0] == "prefetch"
    assert "improvement" in related.TABLE_I["Prefender"][1]
    assert len(related.TABLE_I) == 14
