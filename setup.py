"""Thin setup.py shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) are unavailable;
``pip install -e . --no-build-isolation --no-use-pep517`` uses this shim via
the classic ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
